//! Timing gate for the GPU offload simulator: pinned pass timings for a
//! small network (so a model change is an explicit, reviewed act) plus a
//! seeded property — widening PCIe bandwidth never slows a simulated
//! pass down.
//!
//! The simulator is pure f64 arithmetic over a fixed block list, so the
//! pinned values hold exactly on every platform; they were produced by
//! this very code path and must only change together with a deliberate
//! model change.

use jact_gpusim::netspec::{resnet50_cifar, vgg16_cifar};
use jact_gpusim::{simulate_training_pass, GpuConfig, MethodModel};
use jact_rng::rngs::StdRng;
use jact_rng::{Rng, SeedableRng};

fn assert_close(got: f64, want: f64, what: &str) {
    let rel = ((got - want) / want).abs();
    assert!(
        rel < 1e-12,
        "{what}: simulated {got} µs deviates from pinned {want} µs (rel {rel:e}); \
         if the timing model changed deliberately, update the pinned values"
    );
}

#[test]
fn pinned_pass_timings_for_resnet50_cifar() {
    let g = GpuConfig::titan_v();
    let net = resnet50_cifar();

    let vdnn = simulate_training_pass(&net, &MethodModel::vdnn(), &g);
    assert_close(vdnn.forward_us, PINNED_VDNN[0], "vdnn forward");
    assert_close(vdnn.backward_us, PINNED_VDNN[1], "vdnn backward");
    assert_close(vdnn.compute_only_us, PINNED_VDNN[2], "vdnn compute-only");

    let sfpr = simulate_training_pass(&net, &MethodModel::sfpr(), &g);
    assert_close(sfpr.forward_us, PINNED_SFPR[0], "sfpr forward");
    assert_close(sfpr.backward_us, PINNED_SFPR[1], "sfpr backward");
    assert_close(sfpr.compute_only_us, PINNED_SFPR[2], "sfpr compute-only");

    let jact = simulate_training_pass(&net, &MethodModel::jpeg_act(), &g);
    assert_close(jact.forward_us, PINNED_JACT[0], "jpeg-act forward");
    assert_close(jact.backward_us, PINNED_JACT[1], "jpeg-act backward");
    assert_close(jact.compute_only_us, PINNED_JACT[2], "jpeg-act compute-only");

    // The pinned numbers must preserve the paper's ordering.
    assert!(vdnn.total_us() > sfpr.total_us());
    assert!(sfpr.total_us() > jact.total_us());
}

/// Pinned `[forward_us, backward_us, compute_only_us]` triples
/// (ResNet50/CIFAR on the Titan V model).
const PINNED_VDNN: [f64; 3] = [2630.821035933963, 2791.1365210986955, 1341.3396891932807];
const PINNED_SFPR: [f64; 3] = [787.6210359339628, 1009.5782215134693, 1341.3396891932807];
const PINNED_JACT: [f64; 3] = [523.4204966420521, 955.452507227755, 1341.3396891932807];

#[test]
fn more_pcie_bandwidth_never_slows_a_pass() {
    // Seeded sweep: random bandwidth pairs (a ≤ b) across methods and
    // networks — simulated time must be monotonically non-increasing in
    // PCIe bandwidth.
    let mut rng = StdRng::seed_from_u64(0x9C1E);
    let nets = [resnet50_cifar(), vgg16_cifar()];
    let methods = [MethodModel::vdnn(), MethodModel::sfpr(), MethodModel::jpeg_act()];
    for _ in 0..64 {
        let lo = rng.gen_range(1.0f64..32.0);
        let hi = lo + rng.gen_range(0.0f64..32.0);
        let net = &nets[rng.gen_range(0usize..nets.len())];
        let method = &methods[rng.gen_range(0usize..methods.len())];
        let mut slow = GpuConfig::titan_v();
        slow.pcie_gbps = lo;
        let mut fast = GpuConfig::titan_v();
        fast.pcie_gbps = hi;
        let t_slow = simulate_training_pass(net, method, &slow).total_us();
        let t_fast = simulate_training_pass(net, method, &fast).total_us();
        assert!(
            t_fast <= t_slow + 1e-9,
            "{}/{}: raising PCIe {lo:.2} → {hi:.2} GB/s slowed the pass \
             ({t_slow} → {t_fast} µs)",
            net.name,
            method.name
        );
    }
}

#[test]
fn pass_timing_invariants_hold_across_seeded_bandwidths() {
    // At any bandwidth, total time is bounded below by pure compute and
    // the overhead factor stays finite and ≥ 1.
    let mut rng = StdRng::seed_from_u64(0xBEEF);
    let net = resnet50_cifar();
    for _ in 0..32 {
        let mut g = GpuConfig::titan_v();
        g.pcie_gbps = rng.gen_range(0.5f64..64.0);
        for method in [MethodModel::vdnn(), MethodModel::jpeg_act()] {
            let t = simulate_training_pass(&net, &method, &g);
            assert!(t.total_us() >= t.compute_only_us - 1e-9, "{}", method.name);
            assert!(t.overhead() >= 1.0 - 1e-12 && t.overhead().is_finite());
        }
    }
}

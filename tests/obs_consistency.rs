//! Generative consistency gate: for every codec, the byte totals that
//! [`CompressionStats`] accumulates equal the `codec.bytes_in` /
//! `codec.bytes_out` counter totals an observability capture records —
//! over hundreds of seeded random tensors, so the agreement is a
//! property of the instrumentation, not of one lucky input.
//!
//! The two paths are deliberately independent: stats are recorded from
//! the returned [`CompressedActivation`] sizes, while obs counters are
//! emitted inside the codec pipeline helpers.  Any drift (a stage
//! counted twice, a codec path missing instrumentation) breaks the
//! equality.

use jact_codec::dpr::DprWidth;
use jact_codec::dqt::Dqt;
use jact_codec::pipeline::{
    BrcCodec, Codec, CoderKind, DprCodec, GistCsrCodec, JpegActCodec, JpegBaseCodec, JpegCodec,
    RawCodec, SfprCodec, SfprZvcCodec, ZvcF32Codec,
};
use jact_codec::quant::QuantKind;
use jact_core::stats::CompressionStats;
use jact_dnn::act::ActKind;
use jact_rng::rngs::StdRng;
use jact_rng::{Rng, SeedableRng};
use jact_tensor::{Shape, Tensor};

/// Number of seeded tensors driven through every codec.
const CASES: u64 = 256;

fn all_codecs() -> Vec<(String, Box<dyn Codec>)> {
    let v: Vec<(String, Box<dyn Codec>)> = vec![
        ("raw".into(), Box::new(RawCodec)),
        ("zvc_f32".into(), Box::new(ZvcF32Codec)),
        ("dpr_f16".into(), Box::new(DprCodec::new(DprWidth::F16))),
        ("dpr_f8".into(), Box::new(DprCodec::new(DprWidth::F8))),
        ("gist_csr".into(), Box::new(GistCsrCodec)),
        ("sfpr".into(), Box::new(SfprCodec::new())),
        ("sfpr_zvc".into(), Box::new(SfprZvcCodec::new())),
        ("brc".into(), Box::new(BrcCodec)),
        (
            "jpeg_base_q80".into(),
            Box::new(JpegBaseCodec::new(Dqt::jpeg_quality(80))),
        ),
        (
            "jpeg_act_opth".into(),
            Box::new(JpegActCodec::new(Dqt::opt_h())),
        ),
        (
            "jpeg_shift_zvc_optl".into(),
            Box::new(JpegCodec::new(Dqt::opt_l(), QuantKind::Shift, CoderKind::Zvc)),
        ),
        (
            "jpeg_div_rle_q60".into(),
            Box::new(JpegCodec::new(Dqt::jpeg_quality(60), QuantKind::Div, CoderKind::Rle)),
        ),
    ];
    v
}

/// A seeded random activation with a randomized (but always valid)
/// NCHW shape and ~1/3 zeros, so sparse and dense paths both run.
fn random_tensor(rng: &mut StdRng) -> Tensor {
    let n = rng.gen_range(1usize..3);
    let c = rng.gen_range(1usize..5);
    let h = 8 * rng.gen_range(1usize..3);
    let w = 8 * rng.gen_range(1usize..3);
    let shape = Shape::nchw(n, c, h, w);
    let data = (0..shape.len())
        .map(|_| {
            if rng.gen_bool(1.0 / 3.0) {
                0.0
            } else {
                rng.gen_range(-2.0f32..2.0)
            }
        })
        .collect();
    Tensor::from_vec(shape, data)
}

#[test]
fn stats_totals_equal_obs_counter_totals_for_every_codec() {
    for (name, codec) in all_codecs() {
        let mut stats = CompressionStats::new();
        let mut rng = StdRng::seed_from_u64(0xC0DEC + CASES);
        let (compressions, trace) = jact_obs::collect_with(false, || {
            let mut compressions = 0u64;
            for _ in 0..CASES {
                let x = random_tensor(&mut rng);
                let c = codec.compress(&x);
                stats.record(ActKind::Conv, c.uncompressed_bytes(), c.compressed_bytes());
                compressions += 1;
            }
            compressions
        });
        assert_eq!(compressions, CASES);
        let totals = trace.counter_totals();
        assert_eq!(
            totals.get("codec.compressions").copied().unwrap_or(0),
            CASES,
            "{name}: every compress call must be counted exactly once"
        );
        assert_eq!(
            totals.get("codec.bytes_in").copied().unwrap_or(0),
            stats.total_uncompressed(),
            "{name}: obs bytes_in drifted from CompressionStats"
        );
        assert_eq!(
            totals.get("codec.bytes_out").copied().unwrap_or(0),
            stats.total_compressed(),
            "{name}: obs bytes_out drifted from CompressionStats"
        );
    }
}

#[test]
fn decompress_counters_balance_compressions() {
    let mut rng = StdRng::seed_from_u64(77);
    for (name, codec) in all_codecs() {
        let (_, trace) = jact_obs::collect_with(false, || {
            for _ in 0..8 {
                let x = random_tensor(&mut rng);
                let c = codec.compress(&x);
                codec.decompress(&c).expect("roundtrip");
            }
        });
        let totals = trace.counter_totals();
        assert_eq!(totals.get("codec.compressions").copied().unwrap_or(0), 8, "{name}");
        assert_eq!(totals.get("codec.decompressions").copied().unwrap_or(0), 8, "{name}");
        assert_eq!(
            totals.get("codec.decompress_errors").copied().unwrap_or(0),
            0,
            "{name}"
        );
    }
}

//! Quickstart: compress and recover one activation tensor with every
//! scheme the paper evaluates.
//!
//! ```sh
//! cargo run --release -p jact-bench --example quickstart
//! ```

use jact_codec::dqt::Dqt;
use jact_codec::pipeline::{
    Codec, GistCsrCodec, JpegActCodec, JpegBaseCodec, RawCodec, SfprCodec, ZvcF32Codec,
};
use jact_tensor::{Shape, Tensor};

fn main() {
    // A spatially-correlated activation, as a convolution of an image
    // would produce (the property JPEG-ACT exploits).
    let shape = Shape::nchw(2, 8, 32, 32);
    let data: Vec<f32> = (0..shape.len())
        .map(|i| {
            let x = (i % 32) as f32;
            let y = ((i / 32) % 32) as f32;
            ((x * 0.2).sin() + (y * 0.15).cos()) * 0.8
        })
        .collect();
    let activation = Tensor::from_vec(shape, data);

    let codecs: Vec<Box<dyn Codec>> = vec![
        Box::new(RawCodec),
        Box::new(ZvcF32Codec),
        Box::new(GistCsrCodec),
        Box::new(SfprCodec::new()),
        Box::new(JpegBaseCodec::new(Dqt::jpeg_quality(80))),
        Box::new(JpegActCodec::new(Dqt::opt_l())),
        Box::new(JpegActCodec::new(Dqt::opt_h())),
    ];

    println!(
        "{:<24} {:>10} {:>10} {:>8} {:>12}",
        "codec", "orig (B)", "compr (B)", "ratio", "rms error"
    );
    for codec in &codecs {
        let compressed = codec.compress(&activation);
        let recovered = codec
            .decompress(&compressed)
            .expect("payload produced by the same codec");
        let rms = activation.mse(&recovered).sqrt();
        println!(
            "{:<24} {:>10} {:>10} {:>7.2}x {:>12.5}",
            codec.name(),
            compressed.uncompressed_bytes(),
            compressed.compressed_bytes(),
            compressed.ratio(),
            rms
        );
    }

    println!(
        "\nJPEG-ACT discards redundant *spatial* information: the smoother\n\
         the activation, the higher the ratio at the same error."
    );
}

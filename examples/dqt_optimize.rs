//! Run the Sec. IV DQT optimization on activations harvested from a
//! briefly-trained network, and compare the optimized table against the
//! standard image table it started from.
//!
//! ```sh
//! cargo run --release -p jact-bench --example dqt_optimize
//! ```

use jact_bench::harness::{harvest_dense, TrainCfg};
use jact_codec::dqt::Dqt;
use jact_codec::quant::QuantKind;
use jact_core::dqt_opt::{optimize, DqtOptConfig};
use jact_core::metrics::rate_distortion;

fn main() {
    let cfg = TrainCfg {
        epochs: 1,
        train_batches: 2,
        val_batches: 1,
        batch_size: 4,
        classes: 4,
        seed: 5,
    };
    println!("harvesting dense activations from mini-resnet (warmup 2 steps)...");
    let acts: Vec<_> = harvest_dense("mini-resnet", 2, &cfg)
        .into_iter()
        .take(4)
        .collect();
    println!("harvested {} dense activations", acts.len());

    let init = Dqt::jpeg_quality(80);
    let opt_cfg = DqtOptConfig {
        iters: 4,
        // A handful of sample tensors gives a much shallower objective
        // than the paper's 240, so scale the step accordingly.
        lr: 60.0,
        ..DqtOptConfig::opt_h()
    };
    println!("optimizing DQT (alpha={}, {} iters)...", opt_cfg.alpha, opt_cfg.iters);
    let result = optimize(&acts, &init, &opt_cfg);
    println!("objective trajectory: {:?}", result.trajectory);

    println!("\n{:<14} {:>12} {:>14}", "table", "entropy (b)", "L2 error");
    for dqt in [&init, &result.dqt, &Dqt::opt_l(), &Dqt::opt_h()] {
        let (mut h, mut e) = (0.0, 0.0);
        for a in &acts {
            // DIV back end: the continuous domain the optimizer works in.
            let (hh, ee) = rate_distortion(a, dqt, QuantKind::Div);
            h += hh;
            e += ee;
        }
        let n = acts.len() as f64;
        println!("{:<14} {:>12.3} {:>14.6}", dqt.name(), h / n, e / n);
    }

    println!("\noptimized first row of the DQT (DC pinned to 8):");
    let e = result.dqt.entries();
    println!("{:?}", &e[0..8]);
}

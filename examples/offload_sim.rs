//! Simulate training performance of every offload method on every
//! network — a condensed Fig. 20.
//!
//! ```sh
//! cargo run --release -p jact-bench --example offload_sim
//! ```

use jact_gpusim::config::GpuConfig;
use jact_gpusim::netspec::all_networks;
use jact_gpusim::offload::MethodModel;
use jact_gpusim::sim::{relative_performance, simulate_training_pass};

fn main() {
    let gpu = GpuConfig::titan_v();
    let methods = [
        MethodModel::vdnn(),
        MethodModel::cdma_plus(),
        MethodModel::gist(),
        MethodModel::sfpr(),
        MethodModel::jpeg_base(),
        MethodModel::jpeg_act(),
    ];

    print!("{:<22}", "network");
    for m in &methods {
        print!("{:>11}", m.name);
    }
    println!();

    for net in all_networks() {
        print!("{:<22}", net.name);
        let vdnn = &methods[0];
        for m in &methods {
            let rel = relative_performance(&net, m, vdnn, &gpu);
            print!("{:>10.2}x", rel);
        }
        println!();
    }

    println!("\n(values are speedups relative to vDNN uncompressed offload)");
    let net = &all_networks()[1];
    let t = simulate_training_pass(net, &MethodModel::jpeg_act(), &gpu);
    println!(
        "JPEG-ACT on {}: fwd {:.0}us bwd {:.0}us, overhead over pure compute {:.2}x",
        net.name,
        t.forward_us,
        t.backward_us,
        t.overhead()
    );
}

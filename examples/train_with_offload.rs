//! Train a small ResNet with JPEG-ACT compressed activation offload and
//! compare against exact (uncompressed) training.
//!
//! ```sh
//! cargo run --release -p jact-bench --example train_with_offload
//! ```

use jact_bench::harness::{train_classifier, TrainCfg};
use jact_core::Scheme;

fn main() {
    let cfg = TrainCfg {
        epochs: 4,
        train_batches: 8,
        val_batches: 3,
        batch_size: 8,
        classes: 4,
        seed: 7,
    };
    let model = "mini-resnet";

    println!("training {model} ({} epochs x {} batches)...", cfg.epochs, cfg.train_batches);

    let baseline = train_classifier(model, None, &cfg);
    println!(
        "baseline (exact storage):     val acc {:.1}%",
        baseline.best_score * 100.0
    );

    let jact = train_classifier(model, Some(Scheme::jpeg_act_opt_l5h()), &cfg);
    println!(
        "JPEG-ACT(optL5H) offload:     val acc {:.1}%  compression {:.1}x",
        jact.best_score * 100.0,
        jact.ratio
    );

    let gist = train_classifier(model, Some(Scheme::gist()), &cfg);
    println!(
        "GIST (DPR/BRC/CSR):           val acc {:.1}%  compression {:.1}x",
        gist.best_score * 100.0,
        gist.ratio
    );

    println!(
        "\naccuracy change vs baseline: JPEG-ACT {:+.2} pts at {:.1}x, GIST {:+.2} pts at {:.1}x",
        (jact.best_score - baseline.best_score) * 100.0,
        jact.ratio,
        (gist.best_score - baseline.best_score) * 100.0,
        gist.ratio
    );
}

#!/usr/bin/env bash
# Regenerates the golden observability traces in tests/golden/.
#
# This script is the ONLY sanctioned way to update the corpus: the traces
# are pinned byte-for-byte by tests/obs_golden.rs, so a diff in any
# regenerated file is an intentional pipeline change that must be reviewed
# together with the code that caused it. Never hand-edit the JSON.
#
# The generator records with wall-clock capture disabled and the traces are
# thread-count-invariant by construction, so the output is identical on any
# machine and at any JACT_THREADS setting.

set -euo pipefail
cd "$(dirname "$0")/.."

export CARGO_NET_OFFLINE=true

cargo run -q -p jact-bench --release --offline --bin gen_golden_traces

echo "regen_golden: tests/golden/ refreshed; review the diff before committing"

#!/usr/bin/env bash
# Tier-1 verification gate, run fully offline.
#
# The workspace follows a hermetic-build policy (README "Hermetic build"):
# zero registry/git dependencies, so a clean checkout with an empty cargo
# registry cache must build and test without network access.  This script
# is the command CI and reviewers run; `tests/hermetic.rs` enforces the
# policy from inside the test suite as well.

set -euo pipefail
cd "$(dirname "$0")/.."

export CARGO_NET_OFFLINE=true

echo "== cargo build --release --offline =="
cargo build --release --offline

echo "== cargo build --release --offline --benches (bench targets) =="
cargo build --release --offline --benches

echo "== cargo test -q --offline =="
cargo test -q --offline

echo "== jact-analyze (static analysis, writes target/analyze-report.json) =="
cargo run -q -p jact-analyze --release --offline

echo "== fault_sweep (smoke fault rates over the offload wire path) =="
JACT_QUICK=1 cargo run -q -p jact-bench --release --offline --bin fault_sweep

echo "== codec_throughput (writes BENCH_codec.json: staged + fused stages, thread grid) =="
# Absolute path: cargo runs the bench with cwd = crates/bench, not here.
JACT_QUICK=1 JACT_BENCH_JSON="$PWD" cargo bench -q -p jact-bench --offline --bench codec_throughput

echo "== bench_check (Sec. III-F gates: SH <= DIV cost, fused-stage floor) =="
cargo run -q -p jact-bench --release --offline --bin bench_check -- "$PWD/BENCH_codec.json"

echo "== profile_offload (stage-breakdown profile, writes BENCH_obs.json) =="
JACT_QUICK=1 JACT_BENCH_JSON="$PWD" cargo run -q -p jact-bench --release --offline --bin profile_offload

echo "== golden observability traces (byte-equal at 1/2/8 threads) =="
cargo test -q --offline -p jact-bench --test obs_golden

echo "verify: OK"
